//! End-to-end tracing: the faulted resilience scenario of
//! `tests/resilience_pipeline.rs`, re-run with the flight recorder on,
//! proving that causality context survives every hop of the pipeline.
//!
//! Three invariants:
//!
//! 1. **Reconstructability** — every observation the client recorded
//!    yields a trace whose root is the `sensed` span and which reaches
//!    exactly one primary terminal outcome.
//! 2. **Attribution equals conservation** — the per-hop loss counts read
//!    back from spans match the fault/broker/ingest conservation counters
//!    *exactly*, copy for copy.
//! 3. **Full coverage** — the latency waterfall is non-empty for every
//!    hop of the taxonomy, assimilation fan-in included.

use soundcity::assim::{Blue, CityModel, DiurnalAnalysis, HourlyObservation, NoiseSimulator};
use soundcity::broker::Broker;
use soundcity::faults::{FaultPlan, FaultSpec, FaultyLink, Link, LinkError};
use soundcity::goflow::{GoFlowServer, ObservationQuery, Role};
use soundcity::mobile::{BrokerLink, GoFlowClient, RetryPolicy};
use soundcity::simcore::SimRng;
use soundcity::telemetry::trace::{
    FlightRecorder, Hop, LatencyWaterfall, LossAttribution, Outcome, TraceId, TraceIndex,
};
use soundcity::types::{
    AppId, AppVersion, DeviceModel, GeoBounds, GeoPoint, LocationFix, LocationProvider,
    Observation, SimDuration, SimTime, SoundLevel,
};
use std::sync::Arc;

/// A link during a server outage: every send visibly fails.
struct DownLink;

impl Link for DownLink {
    fn send(&self, _route: &str, _payload: &[u8]) -> Result<usize, LinkError> {
        Err(LinkError::Unavailable("server outage".into()))
    }
}

const DEVICE: u64 = 44;

fn observation(i: i64, at: GeoPoint) -> Observation {
    Observation::builder()
        .device(DEVICE.into())
        .user(DEVICE.into())
        .model(DeviceModel::LgeNexus5)
        .captured_at(SimTime::EPOCH + SimDuration::from_mins(i))
        .spl(SoundLevel::new(45.0 + (i % 30) as f64))
        .location(LocationFix::new(at, 30.0, LocationProvider::Network))
        .app_version(AppVersion::V1_2_9)
        .build()
}

#[test]
fn every_observation_trace_is_reconstructable_and_attribution_balances() {
    let recorder = FlightRecorder::global();
    recorder.clear();

    let broker = Arc::new(Broker::new());
    let server = GoFlowServer::new(Arc::clone(&broker), soundcity::docstore::Store::new());
    let app = AppId::soundcity();
    server.register_app(&app).unwrap();
    // The 30-minute outage backlog arrives >20 minutes late, so the
    // quarantine hop is guaranteed to fire.
    server.set_late_quarantine(Some(SimDuration::from_mins(20)));
    let token = server
        .register_user(&app, DEVICE.into(), Role::Contributor)
        .unwrap();
    let session = server.login(&token).unwrap();
    let key = session.observation_key("noise", "FR75013");

    let spec = FaultSpec {
        drop_prob: 0.08,
        delay_prob: 0.20,
        mean_delay: SimDuration::from_mins(5),
        duplicate_prob: 0.05,
        max_duplicates: 2,
        reorder_prob: 0.05,
        reorder_window: SimDuration::from_secs(30),
        ..FaultSpec::none()
    }
    .with_blackhole(
        "",
        SimTime::EPOCH + SimDuration::from_mins(400),
        SimTime::EPOCH + SimDuration::from_mins(440),
    );
    let faulty = FaultyLink::new(
        BrokerLink::new(&broker, session.exchange()),
        FaultPlan::new(20_160, spec),
    );
    let mut client = GoFlowClient::new(session.exchange(), key, AppVersion::V1_2_9)
        .with_retry_policy(
            RetryPolicy {
                max_attempts: 20,
                ..RetryPolicy::default()
            },
            7,
        );

    // Ten simulated hours, one observation per minute, server down during
    // minutes 200-230 — the resilience scenario, now traced.
    const CYCLES: i64 = 600;
    const OUTAGE: std::ops::Range<i64> = 200..230;
    let bounds = GeoBounds::paris();
    let mut rng = SimRng::new(9);
    let mut expected: Vec<TraceId> = Vec::with_capacity(CYCLES as usize);
    for i in 0..CYCLES {
        let now = SimTime::EPOCH + SimDuration::from_mins(i);
        let at = bounds.lerp(rng.uniform_in(0.05, 0.95), rng.uniform_in(0.05, 0.95));
        let obs = observation(i, at);
        expected.push(TraceId::for_observation(
            DEVICE,
            obs.captured_at.as_millis(),
        ));
        client.record(obs);
        if OUTAGE.contains(&i) {
            client.on_cycle_at(&DownLink, true, now);
        } else {
            faulty.advance_to(now).unwrap();
            client.on_cycle_at(&faulty.at(now), true, now);
        }
    }

    // Quiesce: flush the client, drain the delay line.
    let end = SimTime::EPOCH + SimDuration::from_mins(CYCLES);
    client.flush_at(&faulty.at(end), end);
    faulty.drain_pending().unwrap();
    assert_eq!(client.pending(), 0);
    assert_eq!(client.queued_retries(), 0);
    assert_eq!(
        client.shed_total(),
        0,
        "retry budget must absorb the outage"
    );
    assert_eq!(faulty.pending(), 0);

    // A crash-looping consumer dead-letters the two oldest survivors —
    // their traces must terminate at the DLQ hop.
    let gf_queue = "gf-SC-queue";
    const DEAD_LETTERED: u64 = 2;
    for _ in 0..5 {
        for delivery in broker.consume(gf_queue, DEAD_LETTERED as usize).unwrap() {
            broker.nack(gf_queue, delivery.tag, true).unwrap();
        }
    }

    let outcome = server.ingest_pending(&app, end, 1_000_000).unwrap();
    assert_eq!(broker.queue_depth(gf_queue).unwrap(), 0);
    assert_eq!(outcome.requeued, 0);
    assert_eq!(outcome.malformed, 0);
    assert!(outcome.stored > 0);
    assert!(outcome.quarantined > 0, "outage backlog must arrive late");

    // Assimilation fan-in: every stored document carries its trace id, so
    // the batch span links the member traces it was computed from.
    let docs = server.query(&app, &ObservationQuery::new()).unwrap();
    assert_eq!(docs.len(), outcome.stored);
    let mut members: Vec<TraceId> = Vec::new();
    let mut hourly = Vec::new();
    for doc in &docs {
        let trace: TraceId = doc["trace"]
            .as_str()
            .expect("stored docs carry a trace id")
            .parse()
            .expect("trace ids round-trip through storage");
        members.push(trace);
        hourly.push(HourlyObservation {
            at: GeoPoint {
                lat: doc["lat"].as_f64().unwrap(),
                lon: doc["lon"].as_f64().unwrap(),
            },
            value_db: doc["spl"].as_f64().unwrap(),
            sigma_db: 1.5,
            hour: doc["hour"].as_u64().unwrap() as u32,
        });
    }
    let city = CityModel::synthetic(bounds, 4, 30, &mut rng);
    DiurnalAnalysis::new(Blue::new(4.0, 1_500.0), 8, 8)
        .run_traced(
            &NoiseSimulator::new(city),
            &hourly,
            &members,
            "epoch+10h",
            end.as_millis(),
        )
        .unwrap();

    // --- invariant 1: reconstructability --------------------------------
    assert_eq!(recorder.dropped(), 0, "ring must retain the whole run");
    let spans = recorder.snapshot();
    let index = TraceIndex::from_spans(spans.clone());
    // 600 observation traces plus the one batch fan-in trace.
    assert_eq!(index.len(), CYCLES as usize + 1);
    assert!(
        index.unterminated().is_empty(),
        "every trace must reach a terminal outcome"
    );
    for trace in &expected {
        let tree = index.get(*trace).expect("observation trace retained");
        assert_eq!(tree.root().unwrap().hop, Hop::Sensed);
        let primaries = tree.terminals().filter(|s| !s.duplicate).count();
        assert_eq!(primaries, 1, "trace {trace} must terminate exactly once");
    }
    for member in &members {
        assert!(expected.contains(member), "batch member is a known trace");
    }

    // --- invariant 2: attribution equals conservation -------------------
    let stats = faulty.stats();
    assert!(stats.dropped > 0 && stats.delayed > 0);
    assert!(stats.duplicated > 0 && stats.blackholed > 0);
    let loss = LossAttribution::from_spans(&spans);
    assert_eq!(
        loss.copies(Hop::LinkTransmit, Outcome::Dropped),
        stats.dropped
    );
    assert_eq!(
        loss.copies(Hop::LinkTransmit, Outcome::Blackholed),
        stats.blackholed
    );
    assert_eq!(
        loss.copies(Hop::BrokerDlq, Outcome::DeadLettered),
        DEAD_LETTERED
    );
    assert_eq!(
        loss.copies(Hop::Quarantine, Outcome::Quarantined),
        outcome.quarantined as u64
    );
    assert_eq!(loss.copies(Hop::RetryQueue, Outcome::Shed), 0);
    let stored_spans = spans
        .iter()
        .filter(|s| s.hop == Hop::DocstoreWrite && s.outcome == Outcome::Ok)
        .count();
    assert_eq!(
        stored_spans, outcome.stored,
        "one write span per stored doc"
    );
    // The trace-level ledger: each observation's single primary terminal,
    // summed by outcome, accounts for all 600 — the span-stream view of
    // the resilience test's zero-silent-loss equation.
    let mut ok = 0u64;
    let mut lost = 0u64;
    for trace in &expected {
        let terminal = index.get(*trace).unwrap().terminal().unwrap();
        if terminal.outcome == Outcome::Ok {
            ok += 1;
        } else {
            lost += 1;
        }
    }
    assert_eq!(ok + lost, CYCLES as u64);
    assert_eq!(lost, loss.total_primary());

    // --- invariant 3: full hop coverage ---------------------------------
    // Every hop except `wal_recovery`, which only fires in runs with
    // durability on (see tests/durability_pipeline.rs).
    let expected_hops: Vec<Hop> = Hop::ALL
        .into_iter()
        .filter(|h| *h != Hop::WalRecovery)
        .collect();
    let waterfall = LatencyWaterfall::from_spans(&spans);
    assert_eq!(
        waterfall.hops(),
        expected_hops,
        "every pipeline hop must appear in the waterfall"
    );
    for hop in expected_hops {
        assert!(waterfall.hop(hop).unwrap().count() > 0);
    }
    // The outage and the delay line put real sim-time into the queues
    // (retry spans measure the wait since the *last* re-park, so a lower
    // bar than the delay line's exponential 5-minute mean).
    assert!(waterfall.hop(Hop::RetryQueue).unwrap().p95() > 1_000.0);
    assert!(waterfall.hop(Hop::LinkDelay).unwrap().p95() > 60_000.0);
}
