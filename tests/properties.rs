//! Property-based tests over the substrates' core invariants.

use proptest::prelude::*;
use soundcity::analytics::Histogram;
use soundcity::broker::{topic_matches, Broker, ExchangeType};
use soundcity::docstore::{compare_values, Collection, Filter};
use soundcity::simcore::{stats::percentile, EventQueue, SimRng};
use soundcity::types::{SimTime, SoundLevel};
use std::cmp::Ordering;

// ----- strategies ------------------------------------------------------------

fn word() -> impl Strategy<Value = String> {
    "[a-z0-9]{1,4}".prop_map(|s| s)
}

fn routing_key() -> impl Strategy<Value = String> {
    prop::collection::vec(word(), 1..5).prop_map(|words| words.join("."))
}

fn pattern() -> impl Strategy<Value = String> {
    prop::collection::vec(
        prop_oneof![word(), Just("*".to_owned()), Just("#".to_owned())],
        1..5,
    )
    .prop_map(|words| words.join("."))
}

/// Reference topic matcher: naive recursive implementation, used to
/// validate the production dynamic-programming matcher.
fn reference_matches(pat: &[&str], key: &[&str]) -> bool {
    match (pat.first(), key.first()) {
        (None, None) => true,
        (Some(&"#"), _) => {
            reference_matches(&pat[1..], key)
                || (!key.is_empty() && reference_matches(pat, &key[1..]))
        }
        (Some(&"*"), Some(_)) => reference_matches(&pat[1..], &key[1..]),
        (Some(w), Some(k)) if w == k => reference_matches(&pat[1..], &key[1..]),
        _ => false,
    }
}

proptest! {
    // ----- broker ---------------------------------------------------------

    #[test]
    fn topic_matcher_agrees_with_reference(pat in pattern(), key in routing_key()) {
        let pat_words: Vec<&str> = pat.split('.').collect();
        let key_words: Vec<&str> = key.split('.').collect();
        prop_assert_eq!(
            topic_matches(&pat, &key),
            reference_matches(&pat_words, &key_words),
            "pattern {} key {}", pat, key
        );
    }

    #[test]
    fn hash_only_pattern_matches_everything(key in routing_key()) {
        prop_assert!(topic_matches("#", &key));
    }

    #[test]
    fn literal_pattern_matches_itself_only(a in routing_key(), b in routing_key()) {
        prop_assert!(topic_matches(&a, &a));
        prop_assert_eq!(topic_matches(&a, &b), a == b);
    }

    #[test]
    fn broker_conserves_messages(keys in prop::collection::vec(routing_key(), 1..30)) {
        let broker = Broker::new();
        broker.declare_exchange("e", ExchangeType::Topic).unwrap();
        broker.declare_queue("q").unwrap();
        broker.bind_queue("e", "q", "#").unwrap();
        for key in &keys {
            broker.publish("e", key, key.as_bytes().to_vec()).unwrap();
        }
        let deliveries = broker.consume("q", keys.len() + 10).unwrap();
        prop_assert_eq!(deliveries.len(), keys.len());
        // FIFO, payloads intact.
        for (d, key) in deliveries.iter().zip(&keys) {
            prop_assert_eq!(d.payload().as_ref(), key.as_bytes());
        }
        let m = broker.metrics();
        prop_assert_eq!(m.published, keys.len() as u64);
        prop_assert_eq!(m.routed, keys.len() as u64);
    }

    // ----- event queue -------------------------------------------------------

    #[test]
    fn event_queue_is_a_stable_sort(times in prop::collection::vec(0i64..1000, 0..200)) {
        let mut queue = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            queue.push(SimTime::from_millis(*t), i);
        }
        let mut expected: Vec<(i64, usize)> =
            times.iter().enumerate().map(|(i, t)| (*t, i)).collect();
        expected.sort_by_key(|(t, i)| (*t, *i)); // stable by insertion order
        let popped: Vec<(i64, usize)> = std::iter::from_fn(|| queue.pop())
            .map(|(t, i)| (t.as_millis(), i))
            .collect();
        prop_assert_eq!(popped, expected);
    }

    // ----- sound levels -------------------------------------------------------

    #[test]
    fn combining_never_lowers_the_loudest(levels in prop::collection::vec(0.0f64..100.0, 1..10)) {
        let loudest = levels.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let combined = SoundLevel::combine(levels.iter().map(|l| SoundLevel::new(*l)));
        prop_assert!(combined.db() >= loudest - 1e-9);
        // And never exceeds loudest + 10*log10(n).
        let bound = loudest + 10.0 * (levels.len() as f64).log10();
        prop_assert!(combined.db() <= bound + 1e-9);
    }

    #[test]
    fn leq_lies_between_min_and_max(levels in prop::collection::vec(0.0f64..100.0, 1..20)) {
        let min = levels.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = levels.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let leq = SoundLevel::leq(&levels.iter().map(|l| SoundLevel::new(*l)).collect::<Vec<_>>());
        prop_assert!(leq.db() >= min - 1e-9 && leq.db() <= max + 1e-9);
    }

    // ----- docstore -------------------------------------------------------------

    #[test]
    fn value_ordering_is_total_and_antisymmetric(a in -1000i64..1000, b in -1000i64..1000) {
        let va = serde_json::json!(a);
        let vb = serde_json::json!(b);
        let ab = compare_values(&va, &vb).unwrap();
        let ba = compare_values(&vb, &va).unwrap();
        prop_assert_eq!(ab, ba.reverse());
        prop_assert_eq!(ab == Ordering::Equal, a == b);
    }

    #[test]
    fn filter_range_equals_scan(values in prop::collection::vec(-100i64..100, 1..60),
                                lo in -100i64..100, hi in -100i64..100) {
        prop_assume!(lo <= hi);
        let collection = Collection::new();
        for v in &values {
            collection.insert_one(serde_json::json!({"v": v})).unwrap();
        }
        let expected = values.iter().filter(|v| (lo..=hi).contains(v)).count();
        // Scan path.
        let filter = Filter::range("v", lo, hi);
        prop_assert_eq!(collection.count(&filter).unwrap(), expected);
        // Indexed path must agree.
        collection.create_index("v").unwrap();
        prop_assert_eq!(collection.count(&filter).unwrap(), expected);
    }

    #[test]
    fn updates_then_deletes_leave_consistent_counts(n in 1usize..40) {
        let collection = Collection::new();
        for i in 0..n {
            collection.insert_one(serde_json::json!({"i": i, "flag": false})).unwrap();
        }
        collection.create_index("flag").unwrap();
        let updated = collection
            .update_many(&Filter::lt("i", (n / 2) as i64),
                         &soundcity::docstore::Update::set("flag", true))
            .unwrap();
        prop_assert_eq!(updated, n / 2);
        prop_assert_eq!(collection.count(&Filter::eq("flag", true)).unwrap(), n / 2);
        let deleted = collection.delete_many(&Filter::eq("flag", true)).unwrap();
        prop_assert_eq!(deleted, n / 2);
        prop_assert_eq!(collection.len(), n - n / 2);
    }

    // ----- analytics ---------------------------------------------------------------

    #[test]
    fn histogram_conserves_samples(values in prop::collection::vec(-50.0f64..150.0, 0..200)) {
        let mut h = Histogram::uniform(0.0, 100.0, 10);
        for v in &values {
            h.push(*v);
        }
        let binned: u64 = h.counts().iter().sum();
        prop_assert_eq!(binned + h.underflow() + h.overflow(), values.len() as u64);
        let fractions: f64 = h.fractions().iter().sum::<f64>();
        prop_assert!(fractions <= 1.0 + 1e-9);
    }

    // ----- simcore stats --------------------------------------------------------------

    #[test]
    fn percentile_is_monotone(mut values in prop::collection::vec(-1e6f64..1e6, 1..100),
                              q1 in 0.0f64..1.0, q2 in 0.0f64..1.0) {
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let p_lo = percentile(&values, lo).unwrap();
        let p_hi = percentile(&values, hi).unwrap();
        prop_assert!(p_lo <= p_hi + 1e-9);
        prop_assert!(p_lo >= values[0] - 1e-9);
        prop_assert!(p_hi <= values[values.len() - 1] + 1e-9);
    }

    // ----- rng determinism ---------------------------------------------------------------

    #[test]
    fn split_streams_are_reproducible(seed in any::<u64>(), label_idx in 0u64..50) {
        let mut a = SimRng::new(seed).split("entity", label_idx);
        let mut b = SimRng::new(seed).split("entity", label_idx);
        for _ in 0..8 {
            prop_assert_eq!(a.uniform().to_bits(), b.uniform().to_bits());
        }
    }

    // ----- geo -----------------------------------------------------------------------------

    #[test]
    fn local_projection_round_trips(lat in 48.0f64..49.5, lon in 1.5f64..3.0,
                                    dx in -20_000.0f64..20_000.0, dy in -20_000.0f64..20_000.0) {
        use soundcity::types::GeoPoint;
        let origin = GeoPoint::new(lat, lon);
        let p = GeoPoint::from_local_xy(origin, dx, dy);
        let (bx, by) = p.to_local_xy(origin);
        prop_assert!((bx - dx).abs() < 1e-6, "{} vs {}", bx, dx);
        prop_assert!((by - dy).abs() < 1e-6, "{} vs {}", by, dy);
    }

    #[test]
    fn haversine_triangle_inequality(lat in 48.0f64..49.0, lon in 2.0f64..3.0,
                                     dx in -5_000.0f64..5_000.0, dy in -5_000.0f64..5_000.0) {
        use soundcity::types::GeoPoint;
        let a = GeoPoint::new(lat, lon);
        let b = GeoPoint::from_local_xy(a, dx, dy);
        let c = GeoPoint::from_local_xy(a, dx / 2.0, dy / 2.0);
        prop_assert!(a.distance_m(b) <= a.distance_m(c) + c.distance_m(b) + 1e-6);
        prop_assert!((a.distance_m(b) - b.distance_m(a)).abs() < 1e-9);
    }

    // ----- time ----------------------------------------------------------------------------

    #[test]
    fn time_buckets_are_consistent(millis in -10i64.pow(12)..10i64.pow(12)) {
        let t = SimTime::from_millis(millis);
        let hour = t.hour_of_day();
        prop_assert!(hour < 24);
        prop_assert!(t.minute_of_hour() < 60);
        // Reconstructing from day/hour/min lands in the same minute.
        let frac = t.fractional_hour();
        prop_assert!((0.0..24.0).contains(&frac));
        prop_assert_eq!(frac as u32, hour);
        // Month is day / 30 with flooring.
        prop_assert_eq!(t.month(), t.day().div_euclid(30));
    }

    #[test]
    fn duration_arithmetic_round_trips(a in -10i64.pow(10)..10i64.pow(10),
                                       d in -10i64.pow(9)..10i64.pow(9)) {
        use soundcity::types::SimDuration;
        let t = SimTime::from_millis(a);
        let dur = SimDuration::from_millis(d);
        prop_assert_eq!((t + dur) - dur, t);
        prop_assert_eq!((t + dur).since(t), dur);
    }

    // ----- docstore filters never panic on arbitrary docs -----------------------------------

    #[test]
    fn filters_never_panic_on_arbitrary_documents(
        n in -1000i64..1000,
        s in "[a-z]{0,6}",
        flag in any::<bool>(),
    ) {
        let doc = serde_json::json!({
            "n": n, "s": s, "flag": flag,
            "nested": {"n": n}, "arr": [n, s.clone()],
        });
        let filters = [
            Filter::eq("n", n),
            Filter::ne("s", "x"),
            Filter::gt("nested.n", 0),
            Filter::range("n", -10, 10),
            Filter::exists("arr", true),
            Filter::eq("arr", serde_json::json!([n, s])),
            Filter::Not(Box::new(Filter::eq("flag", true))),
            Filter::or(vec![Filter::eq("missing", 1), Filter::lt("n", 0)]),
        ];
        for f in &filters {
            let _ = f.matches(&doc); // must not panic
        }
        // And parsing a filter built from the doc itself round-trips.
        let parsed = Filter::parse(&serde_json::json!({"n": n, "s": s})).unwrap();
        prop_assert!(parsed.matches(&doc));
    }

    #[test]
    fn set_updates_are_idempotent(n in -1000i64..1000, path in "[a-z]{1,4}(\\.[a-z]{1,4}){0,2}") {
        use soundcity::docstore::Update;
        let update = Update::set(path.clone(), n);
        let mut once = serde_json::json!({});
        update.apply(&mut once).unwrap();
        let mut twice = once.clone();
        update.apply(&mut twice).unwrap();
        prop_assert_eq!(&once, &twice);
        prop_assert_eq!(soundcity::docstore::get_path(&once, &path), Some(&serde_json::json!(n)));
    }

    // ----- sound level round trips ------------------------------------------------------------

    #[test]
    fn energy_round_trip(db in -20.0f64..120.0) {
        let level = SoundLevel::new(db);
        let back = SoundLevel::from_energy(level.energy());
        prop_assert!((back.db() - db).abs() < 1e-9);
    }
}
