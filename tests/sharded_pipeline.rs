//! End-to-end resilience under sharding: the faulted pipeline of
//! `tests/resilience_pipeline.rs`, re-run with a 4-shard broker and a
//! 4-shard docstore behind the same transports and with batched ingest
//! drains interleaved mid-run.
//!
//! Six devices publish on six distinct routing keys chosen so that all
//! four broker shards own traffic. The invariants are the same as the
//! single-broker run — **zero silent loss** (the conservation ledger
//! balances exactly, duplicates included) and **every observation trace
//! reaches exactly one primary terminal outcome** — proving the
//! partitioning scheme changes where messages live, not what happens to
//! them.

use soundcity::broker::{BrokerTransport, ShardedBroker};
use soundcity::docstore::{DocstoreTransport, ShardedStore};
use soundcity::faults::{FaultPlan, FaultSpec, FaultyLink};
use soundcity::goflow::{GoFlowServer, Role};
use soundcity::mobile::{BrokerLink, GoFlowClient, RetryPolicy};
use soundcity::telemetry::trace::{FlightRecorder, TraceId, TraceIndex};
use soundcity::telemetry::Registry;
use soundcity::types::{
    AppId, AppVersion, DeviceModel, Observation, SimDuration, SimTime, SoundLevel,
};
use std::sync::Arc;

fn observation(device: u64, i: i64) -> Observation {
    Observation::builder()
        .device(device.into())
        .user(device.into())
        .model(DeviceModel::LgeNexus5)
        .captured_at(SimTime::EPOCH + SimDuration::from_mins(i))
        .spl(SoundLevel::new(45.0 + ((device as i64 + i) % 30) as f64))
        .app_version(AppVersion::V1_2_9)
        .build()
}

#[test]
fn sharded_pipeline_keeps_zero_silent_loss_and_one_terminal_per_trace() {
    let recorder = FlightRecorder::global();
    recorder.clear();

    const SHARDS: usize = 4;
    const DEVICES: u64 = 6;
    const CYCLES: i64 = 100;

    let broker = Arc::new(ShardedBroker::new(SHARDS));
    let store = Arc::new(ShardedStore::new(SHARDS));
    let server = GoFlowServer::over(
        Arc::clone(&broker) as Arc<dyn BrokerTransport>,
        Arc::clone(&store) as Arc<dyn DocstoreTransport>,
    );
    let app = AppId::soundcity();
    server.register_app(&app).unwrap();

    // One client per device, each on its own routing key. Zones are
    // picked per device so device d's key lands on shard d % SHARDS —
    // all four shards own live traffic by construction.
    let mut sessions = Vec::new();
    for device in 0..DEVICES {
        let token = server
            .register_user(&app, device.into(), Role::Contributor)
            .unwrap();
        let session = server.login(&token).unwrap();
        let want = (device as usize) % SHARDS;
        let (zone, key) = (0..)
            .map(|z| {
                let zone = format!("Z{z:03}");
                let key = session.observation_key("noise", &zone);
                (zone, key)
            })
            .find(|(_, key)| broker.shard_of(key) == want)
            .unwrap();
        sessions.push((device, session, zone, key));
    }
    let shards_hit: std::collections::BTreeSet<usize> = sessions
        .iter()
        .map(|(_, _, _, key)| broker.shard_of(key))
        .collect();
    assert_eq!(shards_hit.len(), SHARDS, "every shard owns a device key");

    // Per-device faulted links (drops, delays, duplicates) and clients.
    let mut rigs = Vec::new();
    for (device, session, _zone, key) in &sessions {
        let spec = FaultSpec {
            drop_prob: 0.06,
            delay_prob: 0.15,
            mean_delay: SimDuration::from_mins(4),
            duplicate_prob: 0.05,
            max_duplicates: 2,
            ..FaultSpec::none()
        };
        let faulty = FaultyLink::new(
            BrokerLink::new(&*broker, session.exchange()),
            FaultPlan::new(7_000 + device, spec),
        );
        let client = GoFlowClient::new(session.exchange(), key.clone(), AppVersion::V1_2_9)
            .with_retry_policy(
                RetryPolicy {
                    max_attempts: 20,
                    ..RetryPolicy::default()
                },
                *device,
            );
        rigs.push((*device, faulty, client));
    }

    // The run: every device records one observation per minute, and the
    // server drains the queue in capped batches every 25 minutes — the
    // batched-ingest path operating *during* the fault storm, not after.
    let mut expected: Vec<TraceId> = Vec::new();
    let mut mid_run_stored = 0usize;
    let mut mid_run_quarantined = 0usize;
    for i in 0..CYCLES {
        let now = SimTime::EPOCH + SimDuration::from_mins(i);
        for (device, faulty, client) in &mut rigs {
            let obs = observation(*device, i);
            expected.push(TraceId::for_observation(
                *device,
                obs.captured_at.as_millis(),
            ));
            client.record(obs);
            faulty.advance_to(now).unwrap();
            client.on_cycle_at(&faulty.at(now), true, now);
        }
        if i % 25 == 24 {
            let outcome = server.ingest_pending(&app, now, 64).unwrap();
            assert_eq!(outcome.requeued, 0);
            mid_run_stored += outcome.stored;
            mid_run_quarantined += outcome.quarantined;
        }
    }
    assert!(
        mid_run_stored > 0,
        "mid-run batched drains must make progress"
    );
    assert_eq!(mid_run_quarantined, 0);

    // Quiesce every device: flush the clients, drain the delay lines.
    let end = SimTime::EPOCH + SimDuration::from_mins(CYCLES);
    let mut sent = 0u64;
    let mut dropped = 0u64;
    let mut duplicated = 0u64;
    for (_, faulty, client) in &mut rigs {
        client.flush_at(&faulty.at(end), end);
        faulty.drain_pending().unwrap();
        assert_eq!(client.pending(), 0);
        assert_eq!(client.queued_retries(), 0);
        assert_eq!(client.shed_total(), 0);
        assert_eq!(faulty.pending(), 0);
        let stats = faulty.stats();
        assert!(stats.delayed > 0, "every plan should have injected delays");
        sent += client.total_sent();
        dropped += stats.dropped;
        duplicated += stats.duplicated;
    }
    assert_eq!(sent, DEVICES * CYCLES as u64);
    assert!(dropped > 0 && duplicated > 0);

    // A crash-looping consumer dead-letters the two oldest survivors —
    // their (sharded) delivery tags must route the nacks back correctly.
    let gf_queue = "gf-SC-queue";
    const DEAD_LETTERED: u64 = 2;
    for _ in 0..5 {
        for delivery in broker.consume(gf_queue, DEAD_LETTERED as usize).unwrap() {
            broker.nack(gf_queue, delivery.tag, true).unwrap();
        }
    }
    let dlq = server.dead_letter_queue(&app);
    assert_eq!(broker.queue_depth(&dlq).unwrap() as u64, DEAD_LETTERED);

    // Malformed probes outside the fault layer: one per device key, so
    // quarantine fires on several shards.
    let malformed = sessions.len() as u64;
    for (_, session, _, key) in &sessions {
        broker
            .publish(session.exchange(), key, &b"corrupted upload"[..])
            .unwrap();
    }

    // Final drain, still in capped batches.
    let mut stored = mid_run_stored as u64;
    let mut quarantined = 0u64;
    loop {
        let outcome = server.ingest_pending(&app, end, 64).unwrap();
        assert_eq!(outcome.requeued, 0);
        stored += outcome.stored as u64;
        quarantined += outcome.quarantined as u64;
        if outcome.stored + outcome.malformed + outcome.quarantined == 0 {
            break;
        }
    }
    assert_eq!(broker.queue_depth(gf_queue).unwrap(), 0);
    assert_eq!(quarantined, malformed);
    assert_eq!(server.quarantine(&app).unwrap().len() as u64, malformed);

    // --- The zero-silent-loss ledger, sharded edition ------------------
    // stored + quarantined + dead-lettered + injected drops
    //   == sent + duplicates + malformed probes.
    assert!(stored > 0);
    assert_eq!(
        stored + quarantined + DEAD_LETTERED + dropped,
        sent + duplicated + malformed
    );

    // The logical queue depth seen through the transport is the sum of
    // the per-shard depths (all zero now), and the batched-ingest and
    // sharded-publish counters both moved.
    let per_shard_total: usize = broker
        .shards()
        .iter()
        .map(|s| s.queue_depth(gf_queue).unwrap())
        .sum();
    assert_eq!(per_shard_total, 0);
    let registry = Registry::global();
    for counter in [
        "broker_sharded_publishes_total",
        "goflow_ingest_batches_total",
        "faults_injected_drops_total",
        "broker_core_dead_lettered_total",
        "goflow_ingest_quarantined_total",
    ] {
        assert!(
            registry.counter_value(counter).unwrap_or(0) > 0,
            "counter {counter} should be non-zero after the run"
        );
    }

    // --- one primary terminal per observation trace --------------------
    assert_eq!(recorder.dropped(), 0, "ring must retain the whole run");
    let spans = recorder.snapshot();
    let index = TraceIndex::from_spans(spans);
    assert!(
        index.unterminated().is_empty(),
        "every trace must reach a terminal outcome"
    );
    for trace in &expected {
        let tree = index.get(*trace).expect("observation trace retained");
        let primaries = tree.terminals().filter(|s| !s.duplicate).count();
        assert_eq!(primaries, 1, "trace {trace} must terminate exactly once");
    }
}
