//! Fleet observability across a real network boundary.
//!
//! `tests/remote_pipeline.rs` proves the socket is transparent and
//! honest; this test proves it is *observable*. A faulted upload run is
//! pushed through a broker and a docstore that live behind real TCP
//! servers, and then — without touching any in-process state — the
//! fleet scraper reconstructs the whole story through the admin opcodes
//! alone (`OP_METRICS`, `OP_HEALTH`, `OP_FLIGHT_DRAIN`, `OP_SLOW_RPCS`),
//! exactly as `xtask obs` would against daemons on other machines:
//!
//! * both instances report themselves ready, and their registries merge
//!   under distinct `instance` labels with per-RPC latency series;
//! * every observation trace is reconstructable from the merged
//!   flight-recorder export with exactly one primary terminal (the
//!   successful docstore write), so the fleet-wide conservation ledger
//!   balances;
//! * the slow-RPC rings answer over the wire.

use soundcity::broker::{Broker, BrokerTransport};
use soundcity::docstore::{DocstoreTransport, Store};
use soundcity::faults::{FaultPlan, FaultSpec};
use soundcity::goflow::{GoFlowServer, Role};
use soundcity::mobile::{BrokerLink, GoFlowClient, RetryPolicy};
use soundcity::net::{
    BrokerService, ClientConfig, DocstoreService, Endpoint, FleetSnapshot, RemoteBroker,
    RemoteStore, ServerConfig, SocketFaultProxy, WireServer,
};
use soundcity::telemetry::trace::{FlightRecorder, Hop, Outcome, TraceId, TraceIndex};
use soundcity::types::{
    AppId, AppVersion, DeviceModel, GeoPoint, LocationFix, LocationProvider, Observation,
    SimDuration, SimTime, SoundLevel,
};
use std::sync::Arc;

const DEVICE: u64 = 19;
const COUNT: i64 = 50;

fn observation(i: i64) -> Observation {
    Observation::builder()
        .device(DEVICE.into())
        .user(DEVICE.into())
        .model(DeviceModel::LgeNexus5)
        .captured_at(SimTime::EPOCH + SimDuration::from_mins(i))
        .spl(SoundLevel::new(45.0 + (i % 25) as f64))
        .location(LocationFix::new(
            GeoPoint::PARIS,
            25.0,
            LocationProvider::Network,
        ))
        .app_version(AppVersion::V1_2_9)
        .build()
}

/// One faulted run, then the whole story re-read through the wire's
/// admin opcodes. This is the only test in this binary on purpose: it
/// owns the process-global flight recorder.
#[test]
fn merged_flight_recorders_reconstruct_every_trace() {
    let recorder = FlightRecorder::global();
    recorder.clear();

    let broker_backend: Arc<dyn BrokerTransport> = Arc::new(Broker::new());
    let broker_srv = WireServer::bind(
        "127.0.0.1:0",
        Arc::new(BrokerService::new(Arc::clone(&broker_backend))),
        ServerConfig {
            instance: "brokerd".to_string(),
            ..ServerConfig::default()
        },
    )
    .expect("bind brokerd");
    let store_backend: Arc<dyn DocstoreTransport> = Arc::new(Store::new());
    let store_srv = WireServer::bind(
        "127.0.0.1:0",
        Arc::new(DocstoreService::new(store_backend)),
        ServerConfig {
            instance: "docstored".to_string(),
            ..ServerConfig::default()
        },
    )
    .expect("bind docstored");

    let remote_broker: Arc<dyn BrokerTransport> = Arc::new(RemoteBroker::connect(
        broker_srv.local_addr().to_string(),
        ClientConfig::default(),
    ));
    let remote_store: Arc<dyn DocstoreTransport> = Arc::new(RemoteStore::connect(
        store_srv.local_addr().to_string(),
        ClientConfig::default(),
    ));
    let server = GoFlowServer::over(remote_broker, remote_store);
    let app = AppId::soundcity();
    server.register_app(&app).expect("register app");
    let token = server
        .register_user(&app, DEVICE.into(), Role::Contributor)
        .expect("register user");
    let session = server.login(&token).expect("login");
    let key = session.observation_key("noise", "FR75013");

    // Uploads go through a proxy that tears a quarter of the frames;
    // the retry path must absorb every failure.
    let spec = FaultSpec {
        drop_prob: 0.25,
        ..FaultSpec::none()
    };
    let mut proxy = SocketFaultProxy::start(broker_srv.local_addr(), FaultPlan::new(6161, spec))
        .expect("start fault proxy");
    let faulted_broker =
        RemoteBroker::connect(proxy.local_addr().to_string(), ClientConfig::default());
    let link = BrokerLink::new(&faulted_broker, session.exchange());

    let mut client = GoFlowClient::new(session.exchange(), key, AppVersion::V1_2_9)
        .with_retry_policy(
            RetryPolicy {
                max_attempts: 50,
                ..RetryPolicy::default()
            },
            17,
        );
    let mut expected: Vec<TraceId> = Vec::with_capacity(COUNT as usize);
    for i in 0..COUNT {
        let now = SimTime::EPOCH + SimDuration::from_mins(i);
        let obs = observation(i);
        expected.push(TraceId::for_observation(
            DEVICE,
            obs.captured_at.as_millis(),
        ));
        client.record(obs);
        client.on_cycle_at(&link, true, now);
    }
    let mut now = SimTime::EPOCH + SimDuration::from_mins(COUNT);
    for _ in 0..200 {
        if client.pending() == 0 && client.queued_retries() == 0 {
            break;
        }
        client.flush_at(&link, now);
        now = now + SimDuration::from_mins(5);
    }
    assert_eq!(client.pending(), 0, "every upload must eventually land");
    let outcome = server.ingest_pending(&app, now, 1_000_000).expect("ingest");
    assert_eq!(outcome.stored as i64, COUNT, "zero silent loss");

    // Provoke one visible RPC error so the error-counter series exists
    // fleet-wide: an unknown opcode answers with a typed error status,
    // which the server counts per opcode.
    let prober = soundcity::net::ClientPool::new(
        broker_srv.local_addr().to_string(),
        ClientConfig::default(),
    );
    assert!(
        prober.call(99, &[], b"").is_err(),
        "unknown opcode must answer with an error status"
    );

    // ---- the remote read-back: everything below uses only the wire.
    let endpoints = [
        Endpoint {
            name: "brokerd".to_string(),
            addr: broker_srv.local_addr().to_string(),
        },
        Endpoint {
            name: "docstored".to_string(),
            addr: store_srv.local_addr().to_string(),
        },
    ];
    let snapshot = FleetSnapshot::scrape(&endpoints, &ClientConfig::default(), true);

    for instance in &snapshot.instances {
        assert!(
            instance.error.is_none(),
            "{}: scrape failed: {:?}",
            instance.name,
            instance.error
        );
        assert!(instance.ready(), "{} must report ready", instance.name);
    }
    assert_eq!(
        snapshot.instances[0].health["role"].as_str(),
        Some("broker")
    );
    assert_eq!(
        snapshot.instances[1].health["role"].as_str(),
        Some("docstore")
    );

    let merged = snapshot.merged_metrics();
    assert!(merged.contains("instance=\"brokerd\""), "{merged}");
    assert!(merged.contains("instance=\"docstored\""));
    assert!(
        merged.contains("net_server_rpc_seconds_bucket{instance="),
        "per-RPC latency series must merge under instance labels"
    );
    assert!(merged.contains("net_server_rpc_errors_total{instance=\"brokerd\""));

    // Every trace reconstructs from the merged flight-recorder export
    // with exactly one primary terminal: the successful docstore write.
    let spans = snapshot.merged_spans();
    assert!(!spans.is_empty(), "flight drain must export the run");
    let index = TraceIndex::from_spans(spans);
    assert!(index.unterminated().is_empty(), "no trace left open");
    for trace in &expected {
        let tree = index.get(*trace).expect("trace retained across drains");
        assert_eq!(tree.root().expect("rooted").hop, Hop::Sensed);
        let primaries: Vec<_> = tree.terminals().filter(|s| !s.duplicate).collect();
        assert_eq!(
            primaries.len(),
            1,
            "trace {trace} must terminate exactly once"
        );
        assert_eq!(primaries[0].hop, Hop::DocstoreWrite);
        assert_eq!(primaries[0].outcome, Outcome::Ok);
    }
    let ledger = snapshot.conservation();
    assert!(ledger.balanced(), "{ledger:?}");
    assert_eq!(ledger.stored as i64, COUNT);

    // The slow-RPC rings answer over the wire (default threshold zero:
    // every request is retained, so the top-k is never empty here).
    let slow = snapshot.slow_rpcs(5);
    assert!(!slow.is_empty(), "slow-RPC rings must answer remotely");

    // Drain mode cleared the recorder: a second scrape starts fresh
    // (modulo the spans recorded by the scrape traffic itself — admin
    // opcodes record none).
    let again = FleetSnapshot::scrape(&endpoints, &ClientConfig::default(), false);
    assert!(
        again.merged_spans().len() < 4,
        "drain must clear the exported spans"
    );

    proxy.stop();
}
