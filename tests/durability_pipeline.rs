//! End-to-end durability: the faulted pipeline with write-ahead-logged
//! storage and messaging, crash-killed mid-batch, recovered on reopen.
//!
//! The scenario extends `tests/trace_pipeline.rs`: a device uploads
//! through a flaky link into a *durable* broker, and GoFlow ingests into
//! a *durable* docstore whose WAL is armed to die mid-append partway
//! through the ingest batch. Three invariants:
//!
//! 1. **Zero silent loss across the crash** — every observation's trace
//!    reaches exactly one primary terminal; stored + dead-lettered +
//!    link-dropped accounts for every recording, crash included.
//! 2. **Deterministic recovery** — two independent replays of each log
//!    produce a byte-identical docstore export and identical broker
//!    queue/DLQ snapshots.
//! 3. **Recovery to full service** — after reopen the recovered state
//!    serves queries, the dead-lettered backlog replays through ingest,
//!    and nothing is lost or duplicated: final documents equal arrivals.

use soundcity::broker::{Broker, BrokerDurabilityConfig};
use soundcity::docstore::{Durability, DurabilityConfig, Store};
use soundcity::faults::{CrashPlan, CrashTarget, FaultPlan, FaultSpec, FaultyLink};
use soundcity::goflow::{GoFlowServer, ObservationQuery, Role};
use soundcity::mobile::{BrokerLink, GoFlowClient, RetryPolicy};
use soundcity::simcore::SimRng;
use soundcity::telemetry::trace::{
    FlightRecorder, Hop, LossAttribution, Outcome, TraceId, TraceIndex,
};
use soundcity::telemetry::Registry;
use soundcity::types::{
    AppId, AppVersion, DeviceModel, GeoBounds, GeoPoint, LocationFix, LocationProvider,
    Observation, SimDuration, SimTime, SoundLevel,
};
use soundcity::wal::{KillPoint, WalConfig};
use std::path::PathBuf;
use std::sync::Arc;

const DEVICE: u64 = 45;
const CYCLES: i64 = 120;

fn observation(i: i64, at: GeoPoint) -> Observation {
    Observation::builder()
        .device(DEVICE.into())
        .user(DEVICE.into())
        .model(DeviceModel::LgeNexus5)
        .captured_at(SimTime::EPOCH + SimDuration::from_mins(i))
        .spl(SoundLevel::new(45.0 + (i % 30) as f64))
        .location(LocationFix::new(at, 30.0, LocationProvider::Network))
        .app_version(AppVersion::V1_2_9)
        .build()
}

fn scratch(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "mps-durability-e2e-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

fn store_config(dir: &PathBuf, wal: WalConfig) -> Durability {
    Durability::Durable(DurabilityConfig::new(dir).wal(wal).snapshot_every(64))
}

fn broker_config(dir: &PathBuf, wal: WalConfig) -> BrokerDurabilityConfig {
    BrokerDurabilityConfig::new(dir).wal(wal).snapshot_every(64)
}

#[test]
fn crash_killed_pipeline_recovers_without_silent_loss() {
    let recorder = FlightRecorder::global();
    recorder.clear();

    let doc_dir = scratch("docstore");
    let broker_dir = scratch("broker");
    let _ = std::fs::remove_dir_all(&doc_dir);
    let _ = std::fs::remove_dir_all(&broker_dir);

    // The docstore's log dies mid-append partway through the ingest
    // batch; the broker's log stays healthy and records the fallout.
    let plan = CrashPlan::at(CrashTarget::Docstore, KillPoint::MidAppend, 40);
    let kill = plan.armed_switch();
    let store = Store::open(store_config(
        &doc_dir,
        WalConfig::default().kill(kill.clone()),
    ))
    .unwrap();
    let broker =
        Arc::new(Broker::open_durable(broker_config(&broker_dir, WalConfig::default())).unwrap());

    let server = GoFlowServer::new(Arc::clone(&broker), store);
    let app = AppId::soundcity();
    server.register_app(&app).unwrap();
    let token = server
        .register_user(&app, DEVICE.into(), Role::Contributor)
        .unwrap();
    let session = server.login(&token).unwrap();
    let key = session.observation_key("noise", "FR75013");
    let gf_queue = "gf-SC-queue";
    let dlq_name = server.dead_letter_queue(&app);

    // Two simulated hours, one observation per minute, over a flaky
    // link: drops and delays, no duplicates (so documents count 1:1).
    let spec = FaultSpec {
        drop_prob: 0.10,
        delay_prob: 0.15,
        mean_delay: SimDuration::from_mins(3),
        ..FaultSpec::none()
    };
    let faulty = FaultyLink::new(
        BrokerLink::new(&broker, session.exchange()),
        FaultPlan::new(4_242, spec),
    );
    let mut client = GoFlowClient::new(session.exchange(), key, AppVersion::V1_2_9)
        .with_retry_policy(RetryPolicy::default(), 7);

    let bounds = GeoBounds::paris();
    let mut rng = SimRng::new(11);
    let mut expected: Vec<TraceId> = Vec::with_capacity(CYCLES as usize);
    for i in 0..CYCLES {
        let now = SimTime::EPOCH + SimDuration::from_mins(i);
        let at = bounds.lerp(rng.uniform_in(0.05, 0.95), rng.uniform_in(0.05, 0.95));
        let obs = observation(i, at);
        expected.push(TraceId::for_observation(
            DEVICE,
            obs.captured_at.as_millis(),
        ));
        client.record(obs);
        faulty.advance_to(now).unwrap();
        client.on_cycle_at(&faulty.at(now), true, now);
    }
    let end = SimTime::EPOCH + SimDuration::from_mins(CYCLES);
    client.flush_at(&faulty.at(end), end);
    faulty.drain_pending().unwrap();
    assert_eq!(client.pending(), 0);
    assert_eq!(client.queued_retries(), 0);
    assert_eq!(client.shed_total(), 0);
    let stats = faulty.stats();
    let arrived = CYCLES as u64 - stats.dropped;
    assert!(stats.dropped > 0, "the link must visibly lose something");

    // Ingest until the queue drains: the WAL dies mid-batch, so the
    // tail of the backlog cycles through redelivery into the DLQ.
    let mut stored_total = 0usize;
    for _ in 0..32 {
        let outcome = server.ingest_pending(&app, end, 10_000).unwrap();
        stored_total += outcome.stored;
        assert_eq!(outcome.malformed, 0);
        assert_eq!(outcome.quarantined, 0);
        if broker.queue_depth(gf_queue).unwrap() == 0 {
            break;
        }
    }
    assert_eq!(broker.queue_depth(gf_queue).unwrap(), 0);
    assert_eq!(
        kill.dead(),
        Some(KillPoint::MidAppend),
        "the crash must fire"
    );
    let dlq_depth = broker.queue_depth(&dlq_name).unwrap() as u64;
    assert!(stored_total > 0, "some of the batch lands before the crash");
    assert!(dlq_depth > 0, "the rest dead-letters after the crash");

    // --- invariant 1: zero silent loss across the crash -----------------
    assert_eq!(recorder.dropped(), 0);
    let spans = recorder.snapshot();
    let index = TraceIndex::from_spans(spans.clone());
    assert!(index.unterminated().is_empty());
    let mut ok = 0u64;
    let mut lost = 0u64;
    for trace in &expected {
        let tree = index.get(*trace).expect("observation trace retained");
        let primaries = tree.terminals().filter(|s| !s.duplicate).count();
        assert_eq!(primaries, 1, "trace {trace} must terminate exactly once");
        if tree.terminal().unwrap().outcome == Outcome::Ok {
            ok += 1;
        } else {
            lost += 1;
        }
    }
    assert_eq!(ok + lost, CYCLES as u64);
    let loss = LossAttribution::from_spans(&spans);
    assert_eq!(lost, loss.total_primary());
    assert_eq!(ok, stored_total as u64, "stored traces match the ledger");
    assert_eq!(
        loss.copies(Hop::LinkTransmit, Outcome::Dropped),
        stats.dropped
    );
    assert_eq!(
        loss.copies(Hop::BrokerDlq, Outcome::DeadLettered),
        dlq_depth
    );
    assert_eq!(
        stored_total as u64 + dlq_depth,
        arrived,
        "pre-crash accounting"
    );

    // Close every handle before recovery.
    drop(client);
    drop(faulty);
    drop(server);
    drop(broker);

    // --- invariant 2: deterministic recovery ----------------------------
    let export = |_: usize| {
        let store = Store::open(store_config(&doc_dir, WalConfig::default())).unwrap();
        store.export_json()
    };
    assert_eq!(
        export(0),
        export(1),
        "docstore replay must be byte-identical"
    );
    let snapshots = |_: usize| {
        let broker =
            Broker::open_durable(broker_config(&broker_dir, WalConfig::default())).unwrap();
        (
            broker.queue_snapshot(gf_queue).unwrap(),
            broker.queue_snapshot(&dlq_name).unwrap(),
        )
    };
    assert_eq!(
        snapshots(0),
        snapshots(1),
        "broker replay must be identical"
    );

    // --- invariant 3: recovery to full service --------------------------
    let recoveries_before = Registry::global()
        .counter_value("wal_recoveries_total")
        .unwrap_or(0);
    let store = Store::open(store_config(
        &doc_dir,
        WalConfig::default().recovery_span_at_ms(end.as_millis()),
    ))
    .unwrap();
    let broker = Arc::new(
        Broker::open_durable(broker_config(
            &broker_dir,
            WalConfig::default().recovery_span_at_ms(end.as_millis()),
        ))
        .unwrap(),
    );
    assert!(
        Registry::global()
            .counter_value("wal_recoveries_total")
            .unwrap_or(0)
            > recoveries_before,
        "recovery must be visible in the metrics"
    );
    assert!(
        recorder
            .snapshot()
            .iter()
            .any(|s| s.hop == Hop::WalRecovery),
        "recovery must appear in the flight recorder"
    );

    let server = GoFlowServer::new(Arc::clone(&broker), store);
    // Re-declaring the topology and indexes is idempotent on recovery.
    server.register_app(&app).unwrap();
    let docs = server.query(&app, &ObservationQuery::new()).unwrap();
    assert_eq!(docs.len(), stored_total, "recovered store serves queries");
    assert_eq!(broker.queue_depth(&dlq_name).unwrap() as u64, dlq_depth);

    // An operator replays the dead-lettered backlog through ingest.
    // Accounts are in-memory (only storage and messaging are durable),
    // so the operator re-registers before logging in.
    let token = server
        .register_user(&app, DEVICE.into(), Role::Contributor)
        .unwrap();
    let session = server.login(&token).unwrap();
    let deliveries = broker.consume(&dlq_name, 10_000).unwrap();
    assert_eq!(deliveries.len() as u64, dlq_depth);
    for delivery in &deliveries {
        broker
            .publish_message(session.exchange(), (*delivery.message).clone())
            .unwrap();
        broker.ack(&dlq_name, delivery.tag).unwrap();
    }
    let late = end + SimDuration::from_mins(5);
    let mut replayed = 0usize;
    for _ in 0..8 {
        let outcome = server.ingest_pending(&app, late, 10_000).unwrap();
        replayed += outcome.stored;
        assert_eq!(outcome.requeued, 0, "the healed store accepts everything");
        if broker.queue_depth(gf_queue).unwrap() == 0 {
            break;
        }
    }
    assert_eq!(replayed as u64, dlq_depth);
    assert_eq!(broker.queue_depth(&dlq_name).unwrap(), 0);
    let docs = server.query(&app, &ObservationQuery::new()).unwrap();
    assert_eq!(
        docs.len() as u64,
        arrived,
        "every arrival is stored exactly once after replay"
    );

    let _ = std::fs::remove_dir_all(&doc_dir);
    let _ = std::fs::remove_dir_all(&broker_dir);
}
