//! End-to-end reproduction checks: replay deployments through the full
//! middleware stack and verify the paper's published findings figure by
//! figure. Heavier statistical checks live here; the per-figure numeric
//! tables are produced by the `figures` harness in `mps-bench`.

use soundcity::analytics::{
    AccuracyReport, ActivityReport, DelayReport, DiurnalReport, GrowthReport, ModelTable,
    ProviderByModeReport, ProviderFilter, SplReport,
};
use soundcity::core::{Dataset, Deployment, ExperimentConfig};
use soundcity::types::{Activity, AppVersion, DeviceModel, LocationProvider, SensingMode};
use std::sync::OnceLock;

/// The main replay: full top-20 mix, two months (app v1.1 era).
fn crowd_dataset() -> &'static Dataset {
    static DATASET: OnceLock<Dataset> = OnceLock::new();
    DATASET.get_or_init(|| Deployment::new(ExperimentConfig::quick()).run())
}

/// A long replay with several devices of two models: spans all three app
/// versions (Figures 15, 17, 19 need per-user depth or the full
/// timeline).
fn longitudinal_dataset() -> &'static Dataset {
    static DATASET: OnceLock<Dataset> = OnceLock::new();
    DATASET.get_or_init(|| {
        let config = ExperimentConfig::quick()
            .with_months(10)
            .with_scale(0.03)
            .with_models(vec![DeviceModel::OneplusA0001, DeviceModel::SamsungSmG901f]);
        Deployment::new(config).run()
    })
}

// ----- pipeline sanity ------------------------------------------------------

#[test]
fn pipeline_telemetry_is_live() {
    use soundcity::assim::{Blue, Grid, PointObservation};
    use soundcity::telemetry::Registry;
    use soundcity::types::{GeoBounds, GeoPoint};

    // Drive the full broker -> goflow -> docstore stack...
    let ds = crowd_dataset();
    assert!(ds.stored() > 0);
    // ...and one assimilation pass.
    let background = Grid::constant(GeoBounds::paris(), 8, 8, 50.0);
    let obs = vec![PointObservation::new(GeoPoint::PARIS, 62.0, 2.0)];
    Blue::new(4.0, 800.0).analyse(&background, &obs).unwrap();

    // Every layer reported into the shared registry.
    let registry = Registry::global();
    for counter in [
        "broker_core_published_total",
        "goflow_ingest_stored_total",
        "docstore_collection_insert_total",
        "assim_blue_passes_total",
    ] {
        assert!(
            registry.counter_value(counter).expect("registered") > 0,
            "{counter} should be live"
        );
    }
    for histogram in [
        "goflow_ingest_delivery_delay_ms",
        "docstore_collection_insert_seconds",
    ] {
        assert!(
            registry.histogram_count(histogram).expect("registered") > 0,
            "{histogram} should be live"
        );
    }
    // The text exposition carries all of it.
    let text = registry.render_text();
    assert!(text.contains("broker_core_published_total"));
    assert!(text.contains("goflow_ingest_delivery_delay_ms_bucket"));
}

#[test]
fn pipeline_conserves_observations() {
    let ds = crowd_dataset();
    assert!(ds.stored() > 10_000, "stored {}", ds.stored());
    assert_eq!(ds.captured, ds.stored() + ds.undelivered);
    // Broker accounting: everything stored was published and acked.
    assert!(ds.broker_metrics.acked >= ds.broker_metrics.published / 2);
    assert_eq!(ds.broker_metrics.unroutable, 0, "no misrouted messages");
}

// ----- Figure 8: contributed observations ------------------------------------

#[test]
fn fig8_growth_is_monotone_and_accelerating() {
    let growth = GrowthReport::build(&crowd_dataset().observations);
    assert!(growth.is_monotone());
    assert!(
        growth.accelerated(),
        "user arrivals must bend the curve upward: {growth}"
    );
    // ~40 % of contributions are localized, matching Figure 8's split.
    let (total, localized) = growth.final_totals();
    let frac = localized as f64 / total as f64;
    assert!((0.35..0.50).contains(&frac), "localized {frac}");
}

// ----- Figure 9: the top-20 table ---------------------------------------------

#[test]
fn fig9_model_table_matches_paper_shape() {
    let table = ModelTable::build(&crowd_dataset().observations);
    let (devices, measurements, _) = table.totals();
    assert_eq!(devices, 20, "quick config: one device per model");
    assert!(measurements > 10_000);
    // Per-model localized fractions track Figure 9 (generous tolerance:
    // one device per model at this scale).
    for row in &table.rows {
        let paper = row.model.paper_stats().localized_fraction();
        assert!(
            (row.localized_fraction() - paper).abs() < 0.15,
            "{}: measured {:.2} vs paper {:.2}",
            row.model,
            row.localized_fraction(),
            paper
        );
    }
    // Overall ≈ 40 %.
    assert!((table.localized_fraction() - 0.41).abs() < 0.06);
}

// ----- Figures 10-13: location accuracy ---------------------------------------

#[test]
fn fig10_accuracy_peaks_in_20_50m_range() {
    let report = AccuracyReport::build(&crowd_dataset().observations, ProviderFilter::All);
    let in_20_50 = report.fraction_in(20.0, 50.0);
    assert!(in_20_50 > 0.35, "20-50 m share {in_20_50}");
    // A visible secondary bump just below 100 m.
    let near_100 = report.fraction_in(50.0, 100.0);
    assert!(near_100 > 0.1, "sub-100 m bump {near_100}");
}

#[test]
fn fig11_gps_is_rare_but_accurate() {
    let obs = &crowd_dataset().observations;
    let gps = AccuracyReport::build(obs, ProviderFilter::Only(LocationProvider::Gps));
    let share = gps.share_of_localized();
    assert!((0.04..0.13).contains(&share), "gps share {share}");
    assert!(
        gps.fraction_in(6.0, 20.0) > 0.5,
        "gps 6-20 m fraction {}",
        gps.fraction_in(6.0, 20.0)
    );
}

#[test]
fn fig12_network_dominates() {
    let obs = &crowd_dataset().observations;
    let network = AccuracyReport::build(obs, ProviderFilter::Only(LocationProvider::Network));
    let share = network.share_of_localized();
    assert!((0.78..0.92).contains(&share), "network share {share}");
    assert!(network.fraction_in(20.0, 50.0) > 0.4);
}

#[test]
fn fig13_fused_is_rare_and_coarse() {
    let obs = &crowd_dataset().observations;
    let fused = AccuracyReport::build(obs, ProviderFilter::Only(LocationProvider::Fused));
    let share = fused.share_of_localized();
    assert!((0.03..0.12).contains(&share), "fused share {share}");
    // "Rather low" accuracy: most fused fixes are beyond 50 m.
    assert!(
        fused.fraction_in(50.0, 5000.0) > 0.5,
        "coarse fused fraction {}",
        fused.fraction_in(50.0, 5000.0)
    );
}

#[test]
fn providers_order_by_accuracy() {
    let obs = &crowd_dataset().observations;
    let median = |p: LocationProvider| {
        let mut acc: Vec<f64> = obs
            .iter()
            .filter_map(|o| o.location.as_ref())
            .filter(|f| f.provider == p)
            .map(|f| f.accuracy_m)
            .collect();
        acc.sort_by(|a, b| a.partial_cmp(b).unwrap());
        acc[acc.len() / 2]
    };
    let gps = median(LocationProvider::Gps);
    let network = median(LocationProvider::Network);
    let fused = median(LocationProvider::Fused);
    assert!(
        gps < network && network < fused,
        "{gps} < {network} < {fused}"
    );
}

// ----- Figures 14-15: SPL heterogeneity ----------------------------------------

#[test]
fn fig14_models_share_shape_but_shift_peaks() {
    let report = SplReport::by_model(&crowd_dataset().observations);
    assert_eq!(report.groups.len(), 20);
    // Every model shows the low-level peak plus an active bump.
    for (label, hist) in &report.groups {
        let peak = hist.peak_center().expect("non-empty");
        assert!((20.0..45.0).contains(&peak), "{label} peak at {peak}");
        assert!(
            report.has_active_bump(label, 55.0, 0.05),
            "{label} lacks the active-environment bump"
        );
    }
    // But the peak positions spread widely across models (heterogeneity).
    assert!(
        report.peak_spread_db() >= 6.0,
        "cross-model peak spread {}",
        report.peak_spread_db()
    );
}

#[test]
fn fig15_same_model_users_align() {
    let obs = &longitudinal_dataset().observations;
    let per_user = SplReport::by_user_of_model(obs, DeviceModel::SamsungSmG901f, 20);
    assert!(
        per_user.groups.len() >= 2,
        "need several users of the model"
    );
    // Same-model users peak within a few dB of each other, far tighter
    // than the cross-model spread.
    assert!(
        per_user.peak_spread_db() <= 5.0,
        "same-model user spread {}",
        per_user.peak_spread_db()
    );
}

// ----- Figure 17: transmission delays -------------------------------------------

#[test]
fn fig17_delay_cdf_shape() {
    let report = DelayReport::build(&longitudinal_dataset().observations);
    // All three versions shipped during the 10 months.
    assert_eq!(report.versions().len(), 3);

    // v1.2.9 (unbuffered, optimised): a substantial immediate mass and a
    // heavy >2 h disconnection tail.
    let quick = report.cdf_at(AppVersion::V1_2_9, 10.0);
    assert!((0.15..0.50).contains(&quick), "v1.2.9 ≤10 s mass {quick}");
    let tail = report.beyond_two_hours(AppVersion::V1_2_9);
    assert!((0.20..0.55).contains(&tail), "v1.2.9 >2 h mass {tail}");

    // v1.1's per-send channel setup makes its ≤10 s mass smaller.
    assert!(
        report.cdf_at(AppVersion::V1_1, 10.0) < quick,
        "v1.1 should be slower than v1.2.9"
    );

    // v1.3 (buffered): almost nothing inside 10 s, most of the non-tail
    // mass within the 50-minute buffering horizon.
    assert!(report.cdf_at(AppVersion::V1_3, 10.0) < 0.15);
    let within_hour = report.cdf_at(AppVersion::V1_3, 3_600.0);
    let v13_tail = report.beyond_two_hours(AppVersion::V1_3);
    assert!(
        within_hour + v13_tail > 0.8,
        "v1.3 mass concentrates at ≤1 h or >2 h: {within_hour} + {v13_tail}"
    );
    // Buffering moderately worsens the tail (paper: 35 % -> 45 %).
    assert!(
        v13_tail > tail - 0.05,
        "buffered tail {v13_tail} vs unbuffered {tail}"
    );
}

// ----- Figures 18-19: participation across time ----------------------------------

#[test]
fn fig18_population_peaks_10_to_21() {
    let report = DiurnalReport::by_model(&crowd_dataset().observations);
    let day = report.fraction_between(10, 21);
    assert!(day > 0.55, "10:00-21:00 share {day}");
    // Crowd heterogeneity still covers all 24 hours (Section 6.1).
    assert!(report.covers_all_hours());
}

#[test]
fn fig19_individual_users_diverge() {
    let obs = &longitudinal_dataset().observations;
    let report = DiurnalReport::by_user_of_model(obs, DeviceModel::OneplusA0001, 10);
    assert!(report.groups.len() >= 2);
    let peaks: std::collections::BTreeSet<u32> = report.peak_hours().into_values().collect();
    assert!(
        peaks.len() >= 2,
        "users should not all peak at the same hour: {peaks:?}"
    );
}

// ----- Figure 20: providers by sensing mode ---------------------------------------

#[test]
fn fig20_participatory_sensing_boosts_gps() {
    let report = ProviderByModeReport::build(&crowd_dataset().observations);
    assert!(report.total(SensingMode::Opportunistic) > 1_000);
    assert!(report.total(SensingMode::Manual) > 20);
    let manual_gain = report.gps_gain_pts(SensingMode::Manual);
    assert!(
        manual_gain > 12.0,
        "manual GPS gain {manual_gain} pts (paper: >20)"
    );
}

#[test]
fn fig20_journey_mode_boosts_gps_most() {
    let report = ProviderByModeReport::build(&longitudinal_dataset().observations);
    if report.total(SensingMode::Journey) >= 30 {
        let journey_gain = report.gps_gain_pts(SensingMode::Journey);
        let manual_gain = report.gps_gain_pts(SensingMode::Manual);
        assert!(
            journey_gain > manual_gain,
            "journey {journey_gain} vs manual {manual_gain}"
        );
        assert!(journey_gain > 25.0, "journey GPS gain {journey_gain} pts");
    }
}

// ----- Figure 21: activities ----------------------------------------------------

#[test]
fn fig21_activity_shares() {
    let report = ActivityReport::build(&crowd_dataset().observations);
    let still = report.share(Activity::Still);
    assert!((0.65..0.75).contains(&still), "still {still}");
    assert!(
        report.moving_share() < 0.10,
        "moving {}",
        report.moving_share()
    );
    let unqualified = report.unqualified_share();
    assert!(
        (0.15..0.25).contains(&unqualified),
        "unqualified {unqualified}"
    );
}

// ----- Determinism ----------------------------------------------------------------

#[test]
fn replays_are_reproducible() {
    let a = Deployment::new(ExperimentConfig::tiny()).run();
    let b = Deployment::new(ExperimentConfig::tiny()).run();
    assert_eq!(a.observations, b.observations);
}
