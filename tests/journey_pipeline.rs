//! Journey mode through the full stack: plan → sense along a path →
//! share through the middleware → subscribers notified → stored → used
//! for exposure reports and crowd-calibration.

use soundcity::analytics::{ExposureReport, HealthBand};
use soundcity::assim::{CrowdCalibrator, CrowdObservation, Grid};
use soundcity::broker::Broker;
use soundcity::docstore::Store;
use soundcity::goflow::{GoFlowServer, ObservationQuery, Role};
use soundcity::mobile::{Device, DeviceConfig, Journey, JourneyVisibility};
use soundcity::simcore::SimRng;
use soundcity::types::{
    AppId, DeviceModel, GeoBounds, GeoPoint, SensingMode, SimDuration, SimTime,
};
use std::sync::Arc;

fn city_path() -> Vec<GeoPoint> {
    vec![
        GeoPoint::new(48.850, 2.340),
        GeoPoint::new(48.855, 2.350),
        GeoPoint::new(48.860, 2.355),
    ]
}

#[test]
fn shared_journey_reaches_subscribers_and_storage() {
    let broker = Arc::new(Broker::new());
    let server = GoFlowServer::new(Arc::clone(&broker), Store::new());
    let app = AppId::soundcity();
    server.register_app(&app).unwrap();

    // Walker and a neighbour subscribed to public journeys in the area.
    let walker_token = server
        .register_user(&app, 1.into(), Role::Contributor)
        .unwrap();
    let neighbour_token = server
        .register_user(&app, 2.into(), Role::Contributor)
        .unwrap();
    let walker = server.login(&walker_token).unwrap();
    let neighbour = server.login(&neighbour_token).unwrap();
    server.subscribe(&neighbour, "Journey", "FR75004").unwrap();

    // Run the journey on a simulated phone.
    let rng = SimRng::new(11);
    let mut device = Device::new(DeviceConfig::new(1, DeviceModel::SonyD5803), &rng);
    let journey = Journey::new(city_path(), SimDuration::from_secs(120))
        .with_visibility(JourneyVisibility::Public);
    let trace = journey.run(&mut device, SimTime::from_hms(2, 17, 0, 0), 15);
    assert_eq!(trace.observations.len(), 15);
    assert!(trace
        .observations
        .iter()
        .all(|o| o.mode == SensingMode::Journey));

    // Publish the trace as one batch with the Journey datatype.
    broker
        .publish(
            walker.exchange(),
            &walker.observation_key("Journey", "FR75004"),
            serde_json::to_vec(&trace.observations).unwrap(),
        )
        .unwrap();

    // The neighbour's queue received the shared journey notification.
    let deliveries = broker.consume(neighbour.queue(), 10).unwrap();
    assert_eq!(deliveries.len(), 1);
    assert!(deliveries[0].routing_key().as_str().contains("Journey"));

    // The server stored each observation of the batch.
    let outcome = server
        .ingest_pending(&app, SimTime::from_hms(2, 17, 35, 0), 10)
        .unwrap();
    assert_eq!(outcome.stored, 15);
    let stored = server
        .query(&app, &ObservationQuery::new().mode(SensingMode::Journey))
        .unwrap();
    assert_eq!(stored.len(), 15);
}

#[test]
fn journey_traces_drive_exposure_reports() {
    let rng = SimRng::new(13);
    let mut device = Device::new(DeviceConfig::new(5, DeviceModel::LgeNexus5), &rng);
    let journey = Journey::new(city_path(), SimDuration::from_secs(60));
    let mut observations = Vec::new();
    for day in 0..3 {
        let trace = journey.run(&mut device, SimTime::from_hms(day, 18, 0, 0), 30);
        observations.extend(trace.observations);
    }
    let report = ExposureReport::build(&observations, 5.into());
    assert_eq!(report.daily.len(), 3);
    for (_, leq, n) in &report.daily {
        assert_eq!(*n, 30);
        assert!(leq.db() > 15.0 && leq.db() < 100.0);
        let _ = HealthBand::of(*leq);
    }
    let (m, l, h) = report.band_days();
    assert_eq!(m + l + h, 3);
}

#[test]
fn journeys_feed_crowd_calibration() {
    // Several walkers on overlapping paths: their traces alone support
    // relative bias estimation.
    let rng = SimRng::new(17);
    let mut crowd = Vec::new();
    for id in 0..4u64 {
        let mut device = Device::new(
            DeviceConfig::new(id + 1, DeviceModel::ALL[(id as usize) % 20]),
            &rng,
        );
        let journey = Journey::new(city_path(), SimDuration::from_secs(60));
        for round in 0..4 {
            let trace = journey.run(&mut device, SimTime::from_hms(round, 15, 0, 0), 40);
            for obs in &trace.observations {
                if let Some(fix) = &obs.location {
                    if GeoBounds::paris().contains(fix.point) {
                        crowd.push(CrowdObservation {
                            device: obs.device,
                            at: fix.point,
                            measured_db: obs.spl.db(),
                        });
                    }
                }
            }
        }
    }
    assert!(crowd.len() > 300, "crowd observations: {}", crowd.len());
    let background = Grid::constant(GeoBounds::paris(), 16, 16, 45.0);
    let result = CrowdCalibrator::default()
        .calibrate(&background, &crowd)
        .unwrap();
    assert_eq!(result.device_bias_db.len(), 4);
    // Anchored at zero mean; residuals tracked per iteration.
    let mean: f64 =
        result.device_bias_db.values().sum::<f64>() / result.device_bias_db.len() as f64;
    assert!(mean.abs() < 1e-9);
    assert_eq!(result.residual_rms_db.len(), 3);
}

use std::collections::BTreeSet;

#[test]
fn deployment_includes_journey_mode_after_release() {
    use soundcity::core::{Deployment, ExperimentConfig};
    let config = ExperimentConfig::tiny().with_months(10);
    let dataset = Deployment::new(config).run();
    let modes: BTreeSet<SensingMode> = dataset.observations.iter().map(|o| o.mode).collect();
    assert!(modes.contains(&SensingMode::Opportunistic));
    assert!(modes.contains(&SensingMode::Manual));
    assert!(modes.contains(&SensingMode::Journey));
    // No journey observations before the release month.
    for obs in &dataset.observations {
        if obs.mode == SensingMode::Journey {
            assert!(
                obs.captured_at.month() >= 9,
                "journey observation before release: {}",
                obs.captured_at
            );
        }
    }
}
