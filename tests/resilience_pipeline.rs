//! End-to-end resilience: the full pipeline (mobile client → broker →
//! ingest → docstore) driven through a seeded fault plan injecting drops,
//! delays, duplicates and a topic black-hole window, plus a visible
//! server outage that exercises the client's retry/backoff machinery and
//! a crash-looping consumer that exercises the broker's dead-letter
//! policy.
//!
//! The invariant under test is **zero silent loss**: every observation the
//! client recorded is either stored, parked in quarantine, parked in the
//! dead-letter queue, or counted as an injected drop/black-hole — and the
//! books balance exactly, duplicates included.

use soundcity::broker::Broker;
use soundcity::faults::{FaultPlan, FaultSpec, FaultyLink, Link, LinkError};
use soundcity::goflow::{GoFlowServer, Role};
use soundcity::mobile::{BrokerLink, GoFlowClient, RetryPolicy};
use soundcity::telemetry::Registry;
use soundcity::types::{
    AppId, AppVersion, DeviceModel, Observation, SimDuration, SimTime, SoundLevel,
};
use std::sync::Arc;

/// A link during a server outage: every send visibly fails, so the
/// client's retry queue and backoff (not the fault plan) must absorb it.
struct DownLink;

impl Link for DownLink {
    fn send(&self, _route: &str, _payload: &[u8]) -> Result<usize, LinkError> {
        Err(LinkError::Unavailable("server outage".into()))
    }
}

fn observation(i: i64) -> Observation {
    Observation::builder()
        .device(4.into())
        .user(4.into())
        .model(DeviceModel::LgeNexus5)
        .captured_at(SimTime::EPOCH + SimDuration::from_mins(i))
        .spl(SoundLevel::new(45.0 + (i % 30) as f64))
        .app_version(AppVersion::V1_2_9)
        .build()
}

#[test]
fn no_silent_loss_under_faults_outage_and_dead_letters() {
    let broker = Arc::new(Broker::new());
    let server = GoFlowServer::new(Arc::clone(&broker), soundcity::docstore::Store::new());
    let app = AppId::soundcity();
    server.register_app(&app).unwrap();
    let token = server
        .register_user(&app, 4.into(), Role::Contributor)
        .unwrap();
    let session = server.login(&token).unwrap();
    let key = session.observation_key("noise", "FR75013");

    // The fault plan: drops + delays + duplicates throughout, plus a
    // black-hole swallowing every route during minutes 400-440.
    let spec = FaultSpec {
        drop_prob: 0.08,
        delay_prob: 0.20,
        mean_delay: SimDuration::from_mins(5),
        duplicate_prob: 0.05,
        max_duplicates: 2,
        reorder_prob: 0.05,
        reorder_window: SimDuration::from_secs(30),
        ..FaultSpec::none()
    }
    .with_blackhole(
        "",
        SimTime::EPOCH + SimDuration::from_mins(400),
        SimTime::EPOCH + SimDuration::from_mins(440),
    );
    let faulty = FaultyLink::new(
        BrokerLink::new(&broker, session.exchange()),
        FaultPlan::new(20_160, spec),
    );

    // A v1.2.9 client (one message per observation) with a generous
    // retry budget so the outage never exhausts it.
    let mut client = GoFlowClient::new(session.exchange(), key.clone(), AppVersion::V1_2_9)
        .with_retry_policy(
            RetryPolicy {
                max_attempts: 20,
                ..RetryPolicy::default()
            },
            7,
        );

    // Ten simulated hours, one observation per minute. The server is
    // visibly down during minutes 200-230.
    const CYCLES: i64 = 600;
    const OUTAGE: std::ops::Range<i64> = 200..230;
    for i in 0..CYCLES {
        let now = SimTime::EPOCH + SimDuration::from_mins(i);
        client.record(observation(i));
        if OUTAGE.contains(&i) {
            client.on_cycle_at(&DownLink, true, now);
        } else {
            faulty.advance_to(now).unwrap();
            client.on_cycle_at(&faulty.at(now), true, now);
        }
    }

    // The outage forced visible failures into the retry queue, and the
    // backlog later drained through the faulty link.
    assert!(client.retried_total() > 0, "outage should force retries");
    assert_eq!(
        client.shed_total(),
        0,
        "retry budget must absorb the outage"
    );

    // Quiesce: flush whatever the client still holds, then force the
    // delay line empty.
    let end = SimTime::EPOCH + SimDuration::from_mins(CYCLES);
    client.flush_at(&faulty.at(end), end);
    faulty.drain_pending().unwrap();
    assert_eq!(client.pending(), 0);
    assert_eq!(client.queued_retries(), 0);
    assert_eq!(faulty.pending(), 0);

    let stats = faulty.stats();
    assert!(stats.dropped > 0, "plan should have injected drops");
    assert!(stats.delayed > 0, "plan should have injected delays");
    assert!(stats.duplicated > 0, "plan should have injected duplicates");
    assert!(stats.blackholed > 0, "black-hole window should have fired");

    // Every observation the client recorded was either shipped or shed.
    let sent = client.total_sent();
    assert_eq!(sent + client.shed_total(), CYCLES as u64);

    // Fault-layer conservation: what the broker received is exactly the
    // sends plus duplicates minus counted losses.
    let gf_queue = "gf-SC-queue";
    let arrived = broker.queue_depth(gf_queue).unwrap() as u64;
    assert_eq!(
        arrived + stats.dropped + stats.blackholed,
        sent + stats.duplicated
    );

    // Three malformed payloads reach the queue outside the fault layer —
    // ingest must quarantine, not drop, them.
    const MALFORMED: u64 = 3;
    for _ in 0..MALFORMED {
        broker
            .publish(session.exchange(), &key, &b"corrupted upload"[..])
            .unwrap();
    }

    // A crash-looping consumer nacks the two oldest messages until the
    // queue's dead-letter policy (5 attempts) parks them in the DLQ.
    const DEAD_LETTERED: u64 = 2;
    for _ in 0..5 {
        for delivery in broker.consume(gf_queue, DEAD_LETTERED as usize).unwrap() {
            broker.nack(gf_queue, delivery.tag, true).unwrap();
        }
    }
    let dlq = server.dead_letter_queue(&app);
    assert_eq!(broker.queue_depth(&dlq).unwrap() as u64, DEAD_LETTERED);

    // Ingest everything that survived.
    let outcome = server.ingest_pending(&app, end, 1_000_000).unwrap();
    assert_eq!(broker.queue_depth(gf_queue).unwrap(), 0);
    assert_eq!(outcome.requeued, 0);
    assert_eq!(outcome.malformed as u64, MALFORMED);
    assert_eq!(outcome.quarantined as u64, MALFORMED);
    assert_eq!(
        server.quarantine(&app).unwrap().len() as u64,
        MALFORMED,
        "malformed payloads must be preserved in quarantine"
    );

    // --- The zero-silent-loss ledger -----------------------------------
    // stored + quarantined + dead-lettered + injected drops + black-holed
    //   == sent + duplicates + malformed probes.
    let stored = outcome.stored as u64;
    assert!(stored > 0);
    assert_eq!(
        stored + outcome.quarantined as u64 + DEAD_LETTERED + stats.dropped + stats.blackholed,
        sent + stats.duplicated + MALFORMED
    );

    // And the ledger is visible operationally: the resilience counters
    // all moved.
    let registry = Registry::global();
    for counter in [
        "mobile_client_upload_failures_total",
        "mobile_client_retry_attempts_total",
        "mobile_client_retry_success_total",
        "faults_injected_drops_total",
        "faults_injected_delays_total",
        "faults_injected_duplicates_total",
        "faults_injected_blackholed_total",
        "broker_core_delivery_failures_total",
        "broker_core_dead_lettered_total",
        "goflow_ingest_quarantined_total",
    ] {
        assert!(
            registry.counter_value(counter).unwrap_or(0) > 0,
            "counter {counter} should be non-zero after the run"
        );
    }
}
