//! Cross-crate integration of the middleware stack: broker topology,
//! GoFlow server, document store and the mobile client working together
//! without the crowd simulator.

use serde_json::json;
use soundcity::broker::{Broker, ExchangeType};
use soundcity::docstore::{Filter, FindOptions, SortOrder, Store};
use soundcity::goflow::{GoFlowServer, ObservationQuery, Packaging, Role};
use soundcity::mobile::GoFlowClient;
use soundcity::types::{
    AppId, AppVersion, DeviceModel, GeoPoint, LocationFix, LocationProvider, Observation,
    SensingMode, SimDuration, SimTime, SoundLevel,
};
use std::sync::Arc;

fn observation(i: i64, localized: bool) -> Observation {
    let mut b = Observation::builder()
        .device(9.into())
        .user(9.into())
        .model(DeviceModel::SonyD6603)
        .captured_at(SimTime::from_hms(0, 9, 0, 0) + SimDuration::from_mins(5 * i))
        .spl(SoundLevel::new(40.0 + i as f64))
        .mode(SensingMode::Opportunistic)
        .app_version(AppVersion::V1_3);
    if localized {
        b = b.location(LocationFix::new(
            GeoPoint::new(48.85, 2.35),
            25.0,
            LocationProvider::Network,
        ));
    }
    b.build()
}

/// The paper's v1.3 buffering client, run against the real server: ten
/// measurements buffer into one batch, which the server unpacks into ten
/// stored documents with correct arrival stamps.
#[test]
fn buffered_client_through_server_roundtrip() {
    let broker = Arc::new(Broker::new());
    let server = GoFlowServer::new(Arc::clone(&broker), Store::new());
    let app = AppId::soundcity();
    server.register_app(&app).unwrap();
    let token = server
        .register_user(&app, 9.into(), Role::Contributor)
        .unwrap();
    let session = server.login(&token).unwrap();

    let mut client = GoFlowClient::new(
        session.exchange(),
        session.observation_key("noise", "FR75005"),
        AppVersion::V1_3,
    );
    for i in 0..10 {
        client.record(observation(i, i % 2 == 0));
        client.on_cycle(&broker, true).unwrap();
    }
    assert_eq!(client.total_transfers(), 1, "ten measurements, one batch");

    let arrival = SimTime::from_hms(0, 10, 0, 0);
    let outcome = server.ingest_pending(&app, arrival, 10).unwrap();
    assert_eq!(outcome.stored, 10);

    // Delays: capture times spread over 45 min before the single arrival.
    let docs = server.query(&app, &ObservationQuery::new()).unwrap();
    assert_eq!(docs.len(), 10);
    let delays: Vec<i64> = docs
        .iter()
        .map(|d| d["delay_ms"].as_i64().unwrap())
        .collect();
    assert_eq!(delays.iter().max(), Some(&(3_600_000)));
    assert_eq!(delays.iter().min(), Some(&(3_600_000 - 45 * 60_000)));

    // Filtered retrieval agrees with what the client sent.
    let localized = server
        .query(&app, &ObservationQuery::new().localized_only())
        .unwrap();
    assert_eq!(localized.len(), 5);
}

/// A disconnected client defers; on reconnection, the unbuffered version
/// pays one transfer per pending observation.
#[test]
fn disconnection_retry_through_stack() {
    let broker = Arc::new(Broker::new());
    let server = GoFlowServer::new(Arc::clone(&broker), Store::new());
    let app = AppId::soundcity();
    server.register_app(&app).unwrap();
    let token = server
        .register_user(&app, 9.into(), Role::Contributor)
        .unwrap();
    let session = server.login(&token).unwrap();
    let mut client = GoFlowClient::new(
        session.exchange(),
        session.observation_key("noise", "FR75005"),
        AppVersion::V1_2_9,
    );

    for i in 0..4 {
        client.record(observation(i, false));
        let sent = client.on_cycle(&broker, false).unwrap();
        assert_eq!(sent.transfers, 0);
    }
    assert_eq!(client.pending(), 4);
    let sent = client.on_cycle(&broker, true).unwrap();
    assert_eq!(sent.transfers, 4);
    let outcome = server
        .ingest_pending(&app, SimTime::from_hms(0, 12, 0, 0), 100)
        .unwrap();
    assert_eq!(outcome.stored, 4);
}

/// GoFlow's storage plays well with raw docstore power-tools (sorting,
/// aggregation-style counting) on the documents it writes.
#[test]
fn stored_documents_are_queryable_with_docstore_primitives() {
    let broker = Arc::new(Broker::new());
    let server = GoFlowServer::new(Arc::clone(&broker), Store::new());
    let app = AppId::soundcity();
    server.register_app(&app).unwrap();
    let token = server
        .register_user(&app, 9.into(), Role::Contributor)
        .unwrap();
    let session = server.login(&token).unwrap();
    let mut client = GoFlowClient::new(
        session.exchange(),
        session.observation_key("noise", "FR75005"),
        AppVersion::V1_2_9,
    );
    for i in 0..6 {
        client.record(observation(i, true));
        client.on_cycle(&broker, true).unwrap();
    }
    server
        .ingest_pending(&app, SimTime::from_hms(0, 11, 0, 0), 100)
        .unwrap();

    let collection = server.collection(&app).unwrap();
    // Sorted cursor, loudest first.
    let loudest = collection
        .find_with_options(
            &Filter::True,
            &FindOptions::new()
                .sort("spl", SortOrder::Descending)
                .limit(1),
        )
        .unwrap();
    assert_eq!(loudest[0]["spl"], json!(45.0));
    // Range count via the indexed path.
    let recent = collection
        .count(&Filter::gte(
            "captured_ms",
            SimTime::from_hms(0, 9, 20, 0).as_millis(),
        ))
        .unwrap();
    assert_eq!(recent, 2);
}

/// The Figure 3 topology isolates applications: a second app's clients
/// never see SoundCity's traffic, and vice versa.
#[test]
fn applications_are_isolated() {
    let broker = Arc::new(Broker::new());
    let server = GoFlowServer::new(Arc::clone(&broker), Store::new());
    let sc = AppId::soundcity();
    let other = AppId::new("AIRQUALITY");
    server.register_app(&sc).unwrap();
    server.register_app(&other).unwrap();

    let sc_token = server
        .register_user(&sc, 1.into(), Role::Contributor)
        .unwrap();
    let other_token = server
        .register_user(&other, 2.into(), Role::Contributor)
        .unwrap();
    let sc_session = server.login(&sc_token).unwrap();
    let other_session = server.login(&other_token).unwrap();

    let obs = observation(0, true);
    broker
        .publish(
            sc_session.exchange(),
            &sc_session.observation_key("noise", "FR75001"),
            serde_json::to_vec(&obs).unwrap(),
        )
        .unwrap();
    broker
        .publish(
            other_session.exchange(),
            &other_session.observation_key("pm25", "FR75001"),
            serde_json::to_vec(&obs).unwrap(),
        )
        .unwrap();

    let now = SimTime::from_hms(0, 10, 0, 0);
    assert_eq!(server.ingest_pending(&sc, now, 10).unwrap().stored, 1);
    assert_eq!(server.ingest_pending(&other, now, 10).unwrap().stored, 1);
    assert_eq!(
        server.query(&sc, &ObservationQuery::new()).unwrap().len(),
        1
    );
    assert_eq!(
        server
            .query(&other, &ObservationQuery::new())
            .unwrap()
            .len(),
        1
    );
    // Storage namespaces differ.
    assert!(server.store().has_collection("obs-SC"));
    assert!(server.store().has_collection("obs-AIRQUALITY"));
}

/// Raw broker + docstore wiring (no GoFlow): a consumer persisting a
/// topic-filtered stream — the minimal "build your own pipeline" path a
/// downstream user might take.
#[test]
fn diy_pipeline_with_broker_and_store() {
    let broker = Broker::new();
    broker
        .declare_exchange("feed", ExchangeType::Topic)
        .unwrap();
    broker.declare_queue("loud-events").unwrap();
    broker
        .bind_queue("feed", "loud-events", "obs.*.loud")
        .unwrap();

    for (zone, kind) in [("a", "loud"), ("b", "quiet"), ("c", "loud")] {
        broker
            .publish(
                "feed",
                &format!("obs.{zone}.{kind}"),
                json!({"zone": zone}).to_string(),
            )
            .unwrap();
    }

    let store = Store::new();
    let sink = store.collection("loud");
    for delivery in broker.consume("loud-events", 100).unwrap() {
        let doc: serde_json::Value = serde_json::from_slice(delivery.payload()).unwrap();
        sink.insert_one(doc).unwrap();
        broker.ack("loud-events", delivery.tag).unwrap();
    }
    assert_eq!(sink.len(), 2);
    assert_eq!(sink.count(&Filter::eq("zone", "a")).unwrap(), 1);
    assert_eq!(sink.count(&Filter::eq("zone", "b")).unwrap(), 0);
}

/// Exported packages parse back losslessly.
#[test]
fn export_round_trips() {
    let broker = Arc::new(Broker::new());
    let server = GoFlowServer::new(Arc::clone(&broker), Store::new());
    let app = AppId::soundcity();
    server.register_app(&app).unwrap();
    server
        .collection(&app)
        .unwrap()
        .insert_many([json!({"spl": 50.0}), json!({"spl": 60.0})])
        .unwrap();

    let lines = server
        .export(&app, &ObservationQuery::new(), Packaging::JsonLines)
        .unwrap();
    let parsed: Vec<serde_json::Value> = lines
        .lines()
        .map(|l| serde_json::from_str(l).unwrap())
        .collect();
    assert_eq!(parsed.len(), 2);

    let array = server
        .export(&app, &ObservationQuery::new(), Packaging::JsonArray)
        .unwrap();
    let parsed: serde_json::Value = serde_json::from_str(&array).unwrap();
    assert_eq!(parsed.as_array().unwrap().len(), 2);
}
